// Command ipusimd runs the experiment service: a long-running HTTP/JSON
// daemon that accepts simulation jobs (single runs, matrices, sensitivity
// sweeps), executes them on a bounded worker pool backed by the
// precondition-snapshot cache, and exposes job lifecycle endpoints plus a
// live progress stream.
//
// Usage:
//
//	ipusimd [-addr :8077] [-workers N] [-queue 64] [-timeout 10m]
//	        [-drain 30s] [-scale 0.05] [-maxjobs 1024]
//
// Endpoints (see internal/server):
//
//	GET  /healthz               liveness probe
//	GET  /v1/schemes            registered scheme names
//	GET  /v1/stats              service counters
//	GET  /v1/jobs               list jobs
//	POST /v1/jobs               submit a job
//	GET  /v1/jobs/{id}          job status
//	POST /v1/jobs/{id}/cancel   cancel a job
//	GET  /v1/jobs/{id}/result   result of a finished job
//	GET  /v1/jobs/{id}/stream   live progress (server-sent events)
//
// On SIGINT/SIGTERM the daemon stops accepting jobs, drains in-flight
// work for up to -drain, then cancels whatever remains and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipusim/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8077", "listen address")
		workers = flag.Int("workers", 0, "concurrent jobs (default GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "bounded job queue capacity (full queue returns 429)")
		timeout = flag.Duration("timeout", 10*time.Minute, "default per-job wall-clock timeout")
		drain   = flag.Duration("drain", 30*time.Second, "shutdown drain budget before in-flight jobs are cancelled")
		scale   = flag.Float64("scale", 0.05, "default trace scale for jobs that omit it")
		maxJobs = flag.Int("maxjobs", 1024, "retained job records (older terminal jobs are evicted)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *workers, *queue, *maxJobs, *timeout, *drain, *scale, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ipusimd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is cancelled (the signal context in production) or
// the listener fails. A non-nil ready receives the bound address once the
// daemon is listening — the test hook for -addr :0.
func run(ctx context.Context, addr string, workers, queue, maxJobs int, timeout, drain time.Duration, scale float64, ready chan<- string) error {
	svc := server.New(server.Options{
		Workers:      workers,
		QueueCap:     queue,
		JobTimeout:   timeout,
		DefaultScale: scale,
		MaxJobs:      maxJobs,
	})
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("ipusimd: serving on %s (workers %d, queue %d)", ln.Addr(), svc.Stats().Workers, queue)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("ipusimd: shutting down (drain %v)", drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain jobs first so in-flight work finishes (or is cancelled at the
	// deadline), then close the HTTP listener: streams of finishing jobs
	// stay readable during the drain.
	svcErr := svc.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if svcErr != nil {
		log.Printf("ipusimd: drain cut short: %v (in-flight jobs cancelled)", svcErr)
	}
	log.Printf("ipusimd: bye")
	return nil
}
