package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ipusim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatrix              	       5	 135795009 ns/op	   1301209 requests/s	115779942 B/op	   12760 allocs/op
BenchmarkHostWrite/Baseline-8 	 1026051	       231.6 ns/op	       0 B/op	       0 allocs/op
BenchmarkParseMSR 	      32	   6852701 ns/op	  93.29 MB/s	 5976338 B/op	   52792 allocs/op
PASS
ok  	ipusim	1.001s
`

func TestParse(t *testing.T) {
	rec, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" {
		t.Errorf("env = %s/%s, want linux/amd64", rec.Goos, rec.Goarch)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(rec.Benchmarks))
	}
	m := rec.Benchmarks[0]
	if m.Name != "BenchmarkMatrix" || m.Iterations != 5 {
		t.Errorf("first = %s x%d, want BenchmarkMatrix x5", m.Name, m.Iterations)
	}
	if m.NsPerOp != 135795009 || m.BytesPerOp != 115779942 || m.AllocsPerOp != 12760 {
		t.Errorf("matrix metrics = %v/%v/%v", m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	if m.Metrics["requests/s"] != 1301209 {
		t.Errorf("requests/s = %v, want 1301209", m.Metrics["requests/s"])
	}
	// The -8 GOMAXPROCS suffix must be trimmed so hosts with different
	// core counts compare by name.
	if got := rec.Benchmarks[1].Name; got != "BenchmarkHostWrite/Baseline" {
		t.Errorf("name = %q, want suffix trimmed", got)
	}
	if got := rec.Benchmarks[1].NsPerOp; got != 231.6 {
		t.Errorf("fractional ns/op = %v, want 231.6", got)
	}
	if got := rec.Benchmarks[2].Metrics["MB/s"]; got != 93.29 {
		t.Errorf("MB/s = %v, want 93.29", got)
	}
}

// TestParseMergesCounts feeds a -count 3 style output and checks repeated
// runs collapse into one mean entry per name.
func TestParseMergesCounts(t *testing.T) {
	const counted = `BenchmarkA 	 10	 100 ns/op	 50 req/s	 8 B/op	 2 allocs/op
BenchmarkA 	 10	 200 ns/op	 70 req/s	 8 B/op	 2 allocs/op
BenchmarkA 	 10	 300 ns/op	 90 req/s	 8 B/op	 2 allocs/op
BenchmarkB 	 1	 5 ns/op
`
	rec, err := Parse(strings.NewReader(counted))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2 after merging", len(rec.Benchmarks))
	}
	a := rec.Benchmarks[0]
	if a.NsPerOp != 200 || a.Iterations != 30 || a.BytesPerOp != 8 || a.AllocsPerOp != 2 {
		t.Errorf("merged = %+v, want mean ns 200 over 30 iterations", a)
	}
	if a.Metrics["req/s"] != 70 {
		t.Errorf("merged req/s = %v, want 70", a.Metrics["req/s"])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok ipusim 0.1s\n")); err == nil {
		t.Fatal("no benchmark lines accepted")
	}
}

func bench(name string, ns, bytes, allocs float64) *Benchmark {
	return &Benchmark{Name: name, Iterations: 1, NsPerOp: ns, BytesPerOp: bytes, AllocsPerOp: allocs}
}

func TestCompare(t *testing.T) {
	oldRec := &Record{Benchmarks: []*Benchmark{
		bench("BenchmarkA", 100, 50, 10),
		bench("BenchmarkGone", 1, 1, 1),
		bench("BenchmarkZero", 100, 0, 0),
	}}
	cases := []struct {
		name      string
		newRec    *Record
		regressed bool
	}{
		{"within threshold", &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 110, 55, 10)}}, false},
		{"ns regression", &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 130, 50, 10)}}, true},
		{"alloc regression", &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 100, 50, 13)}}, true},
		{"improvement", &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 10, 5, 0)}}, false},
		{"new benchmark no baseline", &Record{Benchmarks: []*Benchmark{bench("BenchmarkNew", 1e9, 1e9, 1e6)}}, false},
		{"zero-alloc guarantee lost", &Record{Benchmarks: []*Benchmark{bench("BenchmarkZero", 100, 0, 1)}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			if got := Compare(&sb, oldRec, c.newRec, 0.20, 0.20); got != c.regressed {
				t.Errorf("regressed = %v, want %v\nreport:\n%s", got, c.regressed, sb.String())
			}
		})
	}
}

// TestCompareSplitThresholds checks the time and space gates are
// independent: a loose time threshold (cross-machine CI) must still catch
// a deterministic allocation regression, and vice versa.
func TestCompareSplitThresholds(t *testing.T) {
	oldRec := &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 100, 100, 100)}}
	slower := &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 300, 100, 100)}}
	fatter := &Record{Benchmarks: []*Benchmark{bench("BenchmarkA", 100, 100, 150)}}
	var sb strings.Builder
	if Compare(&sb, oldRec, slower, 5.0, 0.10) {
		t.Error("3x slower flagged despite loose time threshold")
	}
	if !Compare(&sb, oldRec, fatter, 5.0, 0.10) {
		t.Error("50% more allocs passed the tight space threshold")
	}
	if !Compare(&sb, oldRec, slower, 0.20, 5.0) {
		t.Error("3x slower passed the tight time threshold")
	}
}
