// Command benchjson converts `go test -bench` output into a stable JSON
// record and compares two such records for regressions.
//
// Parse mode (default) reads benchmark output on stdin and writes one JSON
// document with every benchmark's ns/op, B/op, allocs/op and custom
// metrics. A second benchmark output may be embedded as the baseline, so
// one file records a before/after pair:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_0.json
//	benchjson -o BENCH_0.json -baseline before.txt < after.txt
//	benchjson -note "hot-path overhaul" < after.txt
//
// Compare mode checks a new record against an old one and exits non-zero
// when any shared benchmark regressed beyond its threshold — the CI gate:
//
//	benchjson -compare -time-threshold 0.20 -space-threshold 0.10 old.json new.json
//
// ns/op is gated by -time-threshold; B/op and allocs/op by
// -space-threshold. The split matters in CI: allocation counts are
// deterministic across machines, so they take a tight threshold even when
// the baseline was recorded on different hardware, while wall-time
// comparisons across machines need a loose one. A benchmark whose baseline
// was zero allocations regresses on any allocation at all. Benchmarks
// present in only one record are reported but never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark line, normalised.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any extra unit pairs (requests/s, MB/s, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the document benchjson emits: environment header lines plus
// every parsed benchmark, and optionally the baseline the run is measured
// against.
type Record struct {
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Note       string       `json:"note,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
	Baseline   *Record      `json:"baseline,omitempty"`
}

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		note     = flag.String("note", "", "freeform note stored in the record")
		baseline = flag.String("baseline", "", "bench output file to embed as the record's baseline")
		compare  = flag.Bool("compare", false, "compare two JSON records: benchjson -compare old.json new.json")
		timeThr  = flag.Float64("time-threshold", 0.20, "relative ns/op regression threshold for -compare")
		spaceThr = flag.Float64("space-threshold", 0.10, "relative B/op and allocs/op regression threshold for -compare")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		regressed, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *timeThr, *spaceThr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	rec, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	rec.Note = *note
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		base, err := Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		rec.Baseline = base
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
}

// Parse reads `go test -bench` output. Unrecognised lines (PASS, ok,
// test log chatter) are skipped. Repeated runs of one benchmark (`-count
// N`) are merged into a single entry by arithmetic mean, so a record
// always holds one entry per benchmark name.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %q: %w", line, err)
		}
		if b != nil {
			rec.Benchmarks = append(rec.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	rec.Benchmarks = mergeRuns(rec.Benchmarks)
	return rec, nil
}

// mergeRuns averages repeated runs of the same benchmark, preserving
// first-seen order. Iteration counts are summed.
func mergeRuns(in []*Benchmark) []*Benchmark {
	byName := make(map[string]*Benchmark, len(in))
	counts := make(map[string]float64, len(in))
	var out []*Benchmark
	for _, b := range in {
		m, ok := byName[b.Name]
		if !ok {
			byName[b.Name] = b
			counts[b.Name] = 1
			out = append(out, b)
			continue
		}
		m.Iterations += b.Iterations
		m.NsPerOp += b.NsPerOp
		m.BytesPerOp += b.BytesPerOp
		m.AllocsPerOp += b.AllocsPerOp
		for unit, v := range b.Metrics {
			if m.Metrics == nil {
				m.Metrics = make(map[string]float64)
			}
			m.Metrics[unit] += v
		}
		counts[b.Name]++
	}
	for _, m := range out {
		n := counts[m.Name]
		if n == 1 {
			continue
		}
		m.NsPerOp /= n
		m.BytesPerOp /= n
		m.AllocsPerOp /= n
		for unit := range m.Metrics {
			m.Metrics[unit] /= n
		}
	}
	return out
}

// parseLine decodes one result line:
//
//	BenchmarkName-8   	 5	 135795009 ns/op	 1301209 requests/s	 115779942 B/op	 12760 allocs/op
//
// The name is followed by the iteration count and (value, unit) pairs.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil // a benchmark name echoed without results (b.Run header)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkFoo ... FAIL" or similar
	}
	b := &Benchmark{Name: trimProcSuffix(fields[0]), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix so records taken on hosts
// with different core counts still match by name.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// loadRecord reads one JSON record from disk.
func loadRecord(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// compareFiles reports each shared benchmark's delta and returns whether
// any metric regressed beyond its threshold.
func compareFiles(w io.Writer, oldPath, newPath string, timeThr, spaceThr float64) (bool, error) {
	oldRec, err := loadRecord(oldPath)
	if err != nil {
		return false, err
	}
	newRec, err := loadRecord(newPath)
	if err != nil {
		return false, err
	}
	return Compare(w, oldRec, newRec, timeThr, spaceThr), nil
}

// Compare writes a per-benchmark report and returns whether anything
// regressed beyond its threshold (timeThr for ns/op, spaceThr for B/op and
// allocs/op).
func Compare(w io.Writer, oldRec, newRec *Record, timeThr, spaceThr float64) bool {
	oldBy := make(map[string]*Benchmark, len(oldRec.Benchmarks))
	for _, b := range oldRec.Benchmarks {
		oldBy[b.Name] = b
	}
	names := make([]string, 0, len(newRec.Benchmarks))
	newBy := make(map[string]*Benchmark, len(newRec.Benchmarks))
	for _, b := range newRec.Benchmarks {
		names = append(names, b.Name)
		newBy[b.Name] = b
	}
	sort.Strings(names)

	regressed := false
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "%-50s new benchmark, no baseline\n", name)
			continue
		}
		for _, m := range []struct {
			unit      string
			old, new  float64
			threshold float64
		}{
			{"ns/op", ob.NsPerOp, nb.NsPerOp, timeThr},
			{"B/op", ob.BytesPerOp, nb.BytesPerOp, spaceThr},
			{"allocs/op", ob.AllocsPerOp, nb.AllocsPerOp, spaceThr},
		} {
			verdict := delta(m.old, m.new, m.threshold)
			if verdict != "" {
				fmt.Fprintf(w, "%-50s %-10s %14.1f -> %-14.1f %s\n", name, m.unit, m.old, m.new, verdict)
				if verdict == "REGRESSED" {
					regressed = true
				}
			}
		}
	}
	for _, b := range oldRec.Benchmarks {
		if _, ok := newBy[b.Name]; !ok {
			fmt.Fprintf(w, "%-50s removed (was in baseline)\n", b.Name)
		}
	}
	if regressed {
		fmt.Fprintf(w, "\nFAIL: regression beyond thresholds (time %.0f%%, space %.0f%%)\n", timeThr*100, spaceThr*100)
	} else {
		fmt.Fprintf(w, "\nOK: no regression beyond thresholds (time %.0f%%, space %.0f%%)\n", timeThr*100, spaceThr*100)
	}
	return regressed
}

// delta classifies one metric change. Empty means unremarkable (within
// threshold, or both zero); "REGRESSED" fails the gate; "improved" is
// informational.
func delta(old, new float64, threshold float64) string {
	if old == 0 && new == 0 {
		return ""
	}
	if old == 0 {
		return "REGRESSED" // zero-alloc / zero-byte guarantee lost
	}
	rel := (new - old) / old
	switch {
	case rel > threshold:
		return "REGRESSED"
	case rel < -threshold:
		return "improved"
	default:
		return ""
	}
}
